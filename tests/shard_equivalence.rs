//! Property tests of the shard-equivalence contract: folding the DMCP
//! objective over streaming CSR shard blocks must reproduce the materialized
//! (`Vec<Sample>`-backed) objective
//!
//! * **bitwise at a fixed thread count**, for *any* shard size — the
//!   per-thread chunks come from the same `chunk_ranges(total, threads)`,
//!   and within a chunk the segmented fused kernel carries its loss
//!   accumulator across shard boundaries, so the floating-point operation
//!   sequence is identical and shard size is unobservable;
//! * **to ≤ 1e-12 across thread counts**, where only the reduction order
//!   changes (the same clause the materialized objective already carries in
//!   `parallel_equivalence.rs`).
//!
//! Shard sizes cover the degenerate corners (one sample per shard, shards
//! larger than the cohort, a shard boundary exactly at the cohort size) and
//! column widths cover all three blocked CSR kernels (K = 4, 8, 16) plus the
//! generic fallback.  The fully out-of-core objective (regenerate +
//! re-featurize per evaluation) is held to the same bitwise clause against
//! the materialized pipeline on a real generated cohort.

use proptest::prelude::*;

use patient_flow::core::dataset::Sample;
use patient_flow::core::loss::DmcpObjective;
use patient_flow::core::stream::{ShardedDmcpObjective, ShardedSamples, StreamingDmcpObjective};
use patient_flow::core::Dataset;
use patient_flow::ehr::{generate_cohort, CohortConfig};
use patient_flow::math::{Matrix, SparseVec};
use patient_flow::optim::SmoothObjective;

const DIM: usize = 12;

/// The four column-width regimes: the K = 4, 8, 16 blocked CSR kernels and
/// the generic fallback (K = 7).
const WIDTHS: [(usize, usize); 4] = [(2, 2), (4, 4), (8, 8), (3, 4)];

/// Build one sample per raw tuple: `(seed index, value, cu label, duration)`.
/// Each sample activates two feature dimensions so gradients touch
/// overlapping rows across samples and shards.
fn build_samples(
    raw: &[(i64, f64, i64, i64)],
    num_cus: usize,
    num_durations: usize,
) -> Vec<Sample> {
    raw.iter()
        .enumerate()
        .map(|(patient_id, &(idx, value, cu, dur))| {
            let first = (idx as usize) % DIM;
            let second = (first + 5) % DIM;
            Sample {
                patient_id,
                features: SparseVec::from_pairs(
                    DIM,
                    vec![(first as u32, value), (second as u32, 1.0)],
                ),
                cu_label: (cu as usize) % num_cus,
                duration_label: (dur as usize) % num_durations,
            }
        })
        .collect()
}

/// The shard sizes under test for a cohort of `n` samples: one sample per
/// shard, a size that leaves a ragged tail, exactly the cohort, and strictly
/// larger than the cohort.
fn shard_sizes(n: usize) -> [usize; 4] {
    [1, 7, n, n + 1]
}

proptest! {
    /// For every column-width regime and shard size, the sharded objective
    /// matches the materialized objective **bitwise** at the same fixed
    /// thread count (1, 2 and 8 workers) — value, gradient, and the fused
    /// pass alike.
    #[test]
    fn sharded_fold_matches_materialized_bitwise_at_fixed_thread_counts(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        width_idx in 0usize..WIDTHS.len(),
        threads_idx in 0usize..3,
    ) {
        let (num_cus, num_durations) = WIDTHS[width_idx];
        let threads = [1usize, 2, 8][threads_idx];
        let samples = build_samples(&raw, num_cus, num_durations);
        let cols = num_cus + num_durations;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.05 * (r as f64) - 0.04 * (c as f64));

        let reference = DmcpObjective::new(&samples, None, DIM, num_cus, num_durations)
            .with_threads(threads);
        let mut grad_ref = Matrix::zeros(DIM, cols);
        let value_ref = reference.value_and_gradient(&theta, &mut grad_ref);

        for shard_size in shard_sizes(samples.len()) {
            let sharded =
                ShardedSamples::from_samples(&samples, shard_size, DIM, num_cus, num_durations);
            let obj = ShardedDmcpObjective::new(&sharded, None).with_threads(threads);

            let mut grad = Matrix::zeros(DIM, cols);
            let value = obj.value_and_gradient(&theta, &mut grad);
            prop_assert!(
                value.to_bits() == value_ref.to_bits(),
                "fused value, shard={} threads={}", shard_size, threads
            );
            prop_assert_eq!(&grad, &grad_ref);

            prop_assert_eq!(obj.value(&theta).to_bits(), value_ref.to_bits());
            let mut grad_only = Matrix::zeros(DIM, cols);
            obj.gradient(&theta, &mut grad_only);
            prop_assert_eq!(&grad_only, &grad_ref);
        }
    }

    /// Per-sample weights shard identically: bitwise against the weighted
    /// materialized objective at a fixed thread count.
    #[test]
    fn weighted_sharded_fold_matches_materialized_bitwise(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 2..32),
        width_idx in 0usize..WIDTHS.len(),
        weight_seed in 0.1f64..5.0,
        threads_idx in 0usize..3,
    ) {
        let (num_cus, num_durations) = WIDTHS[width_idx];
        let threads = [1usize, 2, 8][threads_idx];
        let samples = build_samples(&raw, num_cus, num_durations);
        let weights: Vec<f64> = (0..samples.len())
            .map(|i| weight_seed + 0.3 * (i % 4) as f64)
            .collect();
        let cols = num_cus + num_durations;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.02 * ((r + c) as f64));

        let reference = DmcpObjective::new(&samples, Some(&weights), DIM, num_cus, num_durations)
            .with_threads(threads);
        let mut grad_ref = Matrix::zeros(DIM, cols);
        let value_ref = reference.value_and_gradient(&theta, &mut grad_ref);

        for shard_size in shard_sizes(samples.len()) {
            let sharded =
                ShardedSamples::from_samples(&samples, shard_size, DIM, num_cus, num_durations);
            let obj = ShardedDmcpObjective::new(&sharded, Some(&weights)).with_threads(threads);
            let mut grad = Matrix::zeros(DIM, cols);
            let value = obj.value_and_gradient(&theta, &mut grad);
            prop_assert!(
                value.to_bits() == value_ref.to_bits(),
                "shard={}", shard_size
            );
            prop_assert_eq!(&grad, &grad_ref);
        }
    }

    /// Across thread counts, the sharded fold drifts only by reduction-order
    /// rounding: ≤ 1e-12 against the serial fold, for every shard size —
    /// including more threads than samples.
    #[test]
    fn sharded_fold_matches_serial_within_tolerance_at_any_thread_count(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        width_idx in 0usize..WIDTHS.len(),
        threads in 2i64..10,
    ) {
        let (num_cus, num_durations) = WIDTHS[width_idx];
        let samples = build_samples(&raw, num_cus, num_durations);
        let cols = num_cus + num_durations;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.04 * (r as f64) - 0.03 * (c as f64));

        for shard_size in shard_sizes(samples.len()) {
            let sharded =
                ShardedSamples::from_samples(&samples, shard_size, DIM, num_cus, num_durations);
            let serial = ShardedDmcpObjective::new(&sharded, None);
            let pooled = ShardedDmcpObjective::new(&sharded, None).with_threads(threads as usize);

            let mut grad_serial = Matrix::zeros(DIM, cols);
            let mut grad_pooled = Matrix::zeros(DIM, cols);
            let value_serial = serial.value_and_gradient(&theta, &mut grad_serial);
            let value_pooled = pooled.value_and_gradient(&theta, &mut grad_pooled);

            let max_diff = grad_pooled.sub(&grad_serial).max_abs();
            prop_assert!(
                max_diff <= 1e-12,
                "threads={} shard={} max gradient diff={:e}",
                threads, shard_size, max_diff
            );
            prop_assert!((value_pooled - value_serial).abs() <= 1e-12);
        }
    }

    /// Curvature bounds are a pure in-order fold over the samples, so they
    /// must be bitwise-equal for every shard size, weighted or not.
    #[test]
    fn row_curvature_bounds_match_materialized_bitwise(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        width_idx in 0usize..WIDTHS.len(),
        weighted in 0i64..2,
    ) {
        let (num_cus, num_durations) = WIDTHS[width_idx];
        let samples = build_samples(&raw, num_cus, num_durations);
        let weights: Vec<f64> = (0..samples.len()).map(|i| 0.2 + 0.5 * (i % 3) as f64).collect();
        let weights = if weighted == 1 { Some(&weights[..]) } else { None };

        let reference = DmcpObjective::new(&samples, weights, DIM, num_cus, num_durations);
        let expected = reference.row_curvature_bounds().expect("bounds available");

        for shard_size in shard_sizes(samples.len()) {
            let sharded =
                ShardedSamples::from_samples(&samples, shard_size, DIM, num_cus, num_durations);
            let got = ShardedDmcpObjective::new(&sharded, weights)
                .row_curvature_bounds()
                .expect("bounds available");
            prop_assert_eq!(got.len(), expected.len());
            for (g, e) in got.iter().zip(&expected) {
                prop_assert!(g.to_bits() == e.to_bits(), "shard={}", shard_size);
            }
        }
    }
}

/// The fully out-of-core objective (regenerate + re-featurize per
/// evaluation) against the materialized cohort → dataset → objective
/// pipeline, on a real generated cohort: bitwise at fixed thread counts
/// 1, 2 and 8, across shard sizes spanning "one patient at a time" to
/// "whole cohort in one shard".
#[test]
fn streaming_objective_matches_materialized_bitwise_at_fixed_thread_counts() {
    let cohort_config = CohortConfig::tiny(23);
    let cohort = generate_cohort(&cohort_config);
    let ds = Dataset::from_cohort(&cohort);
    let samples = ds.featurize(ds.default_mcp_kind());
    let m = ds.total_feature_dim();
    let cols = ds.num_cus + ds.num_durations;
    let theta = Matrix::from_fn(m, cols, |r, c| 0.01 * ((r % 9) as f64) - 0.02 * (c as f64));

    for threads in [1usize, 2, 8] {
        let reference = DmcpObjective::new(&samples, None, m, ds.num_cus, ds.num_durations)
            .with_threads(threads);
        let mut grad_ref = Matrix::zeros(m, cols);
        let value_ref = reference.value_and_gradient(&theta, &mut grad_ref);

        for shard_size in [1usize, 32, cohort_config.num_patients + 1] {
            let obj =
                StreamingDmcpObjective::new(&cohort_config, None, shard_size).with_threads(threads);
            assert_eq!(obj.total_samples(), samples.len());
            let mut grad = Matrix::zeros(m, cols);
            let value = obj.value_and_gradient(&theta, &mut grad);
            assert_eq!(
                value.to_bits(),
                value_ref.to_bits(),
                "threads={threads} shard={shard_size}"
            );
            assert_eq!(grad, grad_ref, "threads={threads} shard={shard_size}");
        }
    }
}

/// A fixed thread count must reproduce the sharded fold bitwise across
/// repeated runs (freshly built objective and pool each time).
#[test]
fn sharded_fold_is_bitwise_reproducible_at_a_fixed_thread_count() {
    let samples = build_samples(
        &[
            (0, 0.7, 1, 2),
            (3, 1.1, 2, 0),
            (7, 0.4, 0, 3),
            (9, 1.9, 1, 1),
            (2, 0.9, 3, 2),
            (5, 1.3, 0, 1),
        ],
        4,
        4,
    );
    let cols = 8;
    let theta = Matrix::from_fn(DIM, cols, |r, c| 0.6 * (r as f64) - 0.2 * (c as f64));
    let sharded = ShardedSamples::from_samples(&samples, 2, DIM, 4, 4);
    let run = || {
        let obj = ShardedDmcpObjective::new(&sharded, None).with_threads(3);
        let mut grad = Matrix::zeros(DIM, cols);
        let value = obj.value_and_gradient(&theta, &mut grad);
        (grad, value)
    };
    let (g1, v1) = run();
    let (g2, v2) = run();
    assert_eq!(g1, g2);
    assert_eq!(v1.to_bits(), v2.to_bits());
}
