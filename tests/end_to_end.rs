//! End-to-end integration tests spanning every crate: cohort generation →
//! dataset extraction → training → prediction → evaluation → census
//! simulation.

use patient_flow::baselines::{DmcpPredictor, FlowPredictor, MarkovPredictor, MethodId};
use patient_flow::core::{DmcpModel, TrainConfig};
use patient_flow::ehr::departments::CareUnit;
use patient_flow::ehr::{generate_cohort, CohortConfig};
use patient_flow::eval::census::simulate_census;
use patient_flow::eval::dataset::build_dataset;
use patient_flow::eval::metrics::{evaluate, overall_cu_accuracy};

#[test]
fn full_pipeline_beats_the_majority_class_baseline() {
    let cohort = generate_cohort(&CohortConfig::small(201));
    let dataset = build_dataset(&cohort);
    let (train, test) = dataset.split_holdout(0.2, 201);

    let model = DmcpModel::train(&train, &TrainConfig::fast());
    let acc = overall_cu_accuracy(&model, &test);

    // Majority-class share of the test labels.
    let (cu_counts, _) = test.label_counts();
    let majority_share = *cu_counts.iter().max().unwrap() as f64 / test.len() as f64;

    assert!(
        acc >= majority_share - 0.02,
        "DMCP accuracy {acc:.3} should not fall meaningfully below the majority share {majority_share:.3}"
    );
    assert!(acc > 0.4, "absolute accuracy {acc:.3} unexpectedly low");
}

#[test]
fn pipeline_is_fully_deterministic_for_a_fixed_seed() {
    let run = || {
        let cohort = generate_cohort(&CohortConfig::tiny(202));
        let dataset = build_dataset(&cohort);
        let (train, test) = dataset.split_holdout(0.2, 5);
        let model = DmcpModel::train(&train, &TrainConfig::fast());
        overall_cu_accuracy(&model, &test)
    };
    assert_eq!(run(), run());
}

#[test]
fn dmcp_recovers_rare_unit_signal_better_than_markov() {
    // The cohort plants next-destination signatures in the stay features, so a
    // feature-aware model must beat the feature-free Markov chain on the
    // rarely visited units (which MC essentially never predicts).
    let cohort = generate_cohort(&CohortConfig::small(203));
    let dataset = build_dataset(&cohort);
    let (train, test) = dataset.split_holdout(0.2, 203);

    let dmcp = DmcpPredictor::train(&train, &TrainConfig::fast(), MethodId::Sdmcp);
    let markov = MarkovPredictor::train(&train);

    let dmcp_report = evaluate(&dmcp, &test);
    let mc_report = evaluate(&markov, &test);

    let rare = [
        CareUnit::Ficu.index(),
        CareUnit::Csru.index(),
        CareUnit::Micu.index(),
    ];
    let rare_sum = |report: &patient_flow::eval::metrics::AccuracyReport| {
        rare.iter().map(|&c| report.per_cu[c]).sum::<f64>()
    };
    assert!(
        rare_sum(&dmcp_report) > rare_sum(&mc_report),
        "SDMCP should recover non-ward units better than MC ({:.3} vs {:.3})",
        rare_sum(&dmcp_report),
        rare_sum(&mc_report)
    );
    assert!(dmcp_report.overall_cu >= mc_report.overall_cu - 0.02);
}

#[test]
fn census_simulation_runs_for_trained_and_count_based_models() {
    let cohort = generate_cohort(&CohortConfig::tiny(204));
    let dataset = build_dataset(&cohort);
    let (train, test) = dataset.split_holdout(0.3, 204);

    let dmcp = DmcpPredictor::train(&train, &TrainConfig::fast(), MethodId::Dmcp);
    let markov = MarkovPredictor::train(&train);

    for predictor in [&dmcp as &dyn FlowPredictor, &markov as &dyn FlowPredictor] {
        let census = simulate_census(predictor, &test);
        assert!(census.overall_error.is_finite());
        assert!(census
            .per_cu_error
            .iter()
            .all(|e| e.is_finite() && *e >= 0.0));
        // The simulated totals never exceed the number of held-out patients.
        for day in 0..patient_flow::eval::census::CENSUS_DAYS {
            let total: usize = (0..8).map(|cu| census.simulated[cu][day]).sum();
            assert!(total <= test.patients.len());
        }
    }
}

#[test]
fn group_lasso_reports_shared_feature_selection() {
    let cohort = generate_cohort(&CohortConfig::tiny(205));
    let dataset = build_dataset(&cohort);
    let strong = DmcpModel::train(&dataset, &TrainConfig::fast().with_gamma(0.05));
    assert!(strong.num_selected() < strong.num_features());
    assert!(strong.sparsity() > 0.0);
    // Selected features index into the combined feature space.
    for idx in strong.selected_features() {
        assert!(idx < strong.num_features());
    }
}
