//! Property tests of the parallel-training determinism contract: sharded
//! gradient/loss accumulation must match the serial path to within 1e-12 at
//! any thread count, including the degenerate case of more threads than
//! samples, and must be bitwise-reproducible for a fixed thread count.
//!
//! The fused evaluation path (`SmoothObjective::value_and_gradient`) carries
//! the same contract plus one stronger clause: **fused serial must match the
//! separate serial `value` + `gradient` calls bitwise**, because it performs
//! the identical floating-point operations in the identical order and merely
//! skips the duplicated score pass.
//!
//! The fused path is batched over the cohort's CSR packing
//! (`pfp_math::CsrMatrix`); the same bitwise clause binds it to the
//! per-sample `SparseVec` walk (`value_and_gradient_unbatched`), because the
//! batched kernels visit the same nonzeros in the same order and only change
//! the memory layout.

use proptest::prelude::*;

use patient_flow::core::dataset::Sample;
use patient_flow::core::loss::DmcpObjective;
use patient_flow::core::{train, Dataset, TrainConfig};
use patient_flow::ehr::{generate_cohort, CohortConfig};
use patient_flow::math::parallel::chunk_ranges;
use patient_flow::math::{Matrix, SparseVec};
use patient_flow::optim::SmoothObjective;

const DIM: usize = 12;
const NUM_CUS: usize = 3;
const NUM_DURATIONS: usize = 4;

/// Build one sample per raw tuple: `(seed index, value, cu label, duration)`.
/// Each sample activates two feature dimensions so gradients touch
/// overlapping rows across samples.
fn build_samples(raw: &[(i64, f64, i64, i64)]) -> Vec<Sample> {
    raw.iter()
        .enumerate()
        .map(|(patient_id, &(idx, value, cu, dur))| {
            let first = (idx as usize) % DIM;
            let second = (first + 5) % DIM;
            Sample {
                patient_id,
                features: SparseVec::from_pairs(
                    DIM,
                    vec![(first as u32, value), (second as u32, 1.0)],
                ),
                cu_label: (cu as usize) % NUM_CUS,
                duration_label: (dur as usize) % NUM_DURATIONS,
            }
        })
        .collect()
}

proptest! {
    /// Sharded accumulation matches the serial gradient and loss to ≤ 1e-12
    /// for every thread count, including threads > samples (degenerate case:
    /// one sample per shard).
    #[test]
    fn sharded_gradient_matches_serial_at_any_thread_count(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        threads in 2i64..10,
    ) {
        let samples = build_samples(&raw);
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.05 * (r as f64) - 0.04 * (c as f64));

        let serial = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS);
        let mut grad_serial = Matrix::zeros(DIM, cols);
        serial.gradient(&theta, &mut grad_serial);

        let sharded = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS)
            .with_threads(threads as usize);
        let mut grad_sharded = Matrix::zeros(DIM, cols);
        sharded.gradient(&theta, &mut grad_sharded);

        let max_diff = grad_sharded.sub(&grad_serial).max_abs();
        prop_assert!(
            max_diff <= 1e-12,
            "threads={} samples={} max gradient diff={:e}",
            threads, samples.len(), max_diff
        );
        let loss_diff = (sharded.value(&theta) - serial.value(&theta)).abs();
        prop_assert!(loss_diff <= 1e-12, "loss diff={:e}", loss_diff);
    }

    /// Per-sample weights shard identically to the unweighted path.
    #[test]
    fn sharded_gradient_matches_serial_with_weights(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 2..24),
        weight_seed in 0.1f64..5.0,
        threads in 2i64..7,
    ) {
        let samples = build_samples(&raw);
        let weights: Vec<f64> = (0..samples.len())
            .map(|i| weight_seed + 0.3 * (i % 4) as f64)
            .collect();
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.02 * ((r + c) as f64));

        let serial = DmcpObjective::new(&samples, Some(&weights), DIM, NUM_CUS, NUM_DURATIONS);
        let sharded = DmcpObjective::new(&samples, Some(&weights), DIM, NUM_CUS, NUM_DURATIONS)
            .with_threads(threads as usize);
        let mut a = Matrix::zeros(DIM, cols);
        let mut b = Matrix::zeros(DIM, cols);
        serial.gradient(&theta, &mut a);
        sharded.gradient(&theta, &mut b);
        prop_assert!(b.sub(&a).max_abs() <= 1e-12);
    }

    /// Fused serial evaluation == separate serial `value` + `gradient`,
    /// **bitwise**, with and without per-sample weights.
    #[test]
    fn fused_serial_matches_separate_serial_bitwise(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        weighted in 0i64..2,
    ) {
        let samples = build_samples(&raw);
        let weights: Vec<f64> = (0..samples.len()).map(|i| 0.2 + 0.5 * (i % 3) as f64).collect();
        let weights = if weighted == 1 { Some(&weights[..]) } else { None };
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.03 * (r as f64) - 0.05 * (c as f64));

        let obj = DmcpObjective::new(&samples, weights, DIM, NUM_CUS, NUM_DURATIONS);
        let mut grad_sep = Matrix::zeros(DIM, cols);
        obj.gradient(&theta, &mut grad_sep);
        let value_sep = obj.value(&theta);

        let mut grad_fused = Matrix::zeros(DIM, cols);
        let value_fused = obj.value_and_gradient(&theta, &mut grad_fused);

        // Bitwise: same floating-point ops in the same order.
        prop_assert_eq!(grad_fused, grad_sep);
        prop_assert_eq!(value_fused.to_bits(), value_sep.to_bits());
    }

    /// The batched CSR kernel matches the per-sample fused walk **bitwise**
    /// in serial, with and without per-sample weights.
    #[test]
    fn batched_csr_matches_per_sample_kernel_bitwise(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        weighted in 0i64..2,
    ) {
        let samples = build_samples(&raw);
        let weights: Vec<f64> = (0..samples.len()).map(|i| 0.3 + 0.4 * (i % 5) as f64).collect();
        let weights = if weighted == 1 { Some(&weights[..]) } else { None };
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.06 * (r as f64) - 0.02 * (c as f64));

        let obj = DmcpObjective::new(&samples, weights, DIM, NUM_CUS, NUM_DURATIONS);
        let mut grad_batched = Matrix::zeros(DIM, cols);
        let value_batched = obj.value_and_gradient(&theta, &mut grad_batched);
        let mut grad_unbatched = Matrix::zeros(DIM, cols);
        let value_unbatched = obj.value_and_gradient_unbatched(&theta, &mut grad_unbatched);

        prop_assert_eq!(grad_batched, grad_unbatched);
        prop_assert_eq!(value_batched.to_bits(), value_unbatched.to_bits());
    }

    /// The pooled batched kernel matches the serial per-sample walk to
    /// ≤ 1e-12 at every thread count (sharding changes the reduction order,
    /// so bitwise does not apply across thread counts).
    #[test]
    fn batched_pooled_matches_per_sample_serial_at_any_thread_count(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        threads in 2i64..10,
    ) {
        let samples = build_samples(&raw);
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.07 * (r as f64) - 0.01 * (c as f64));

        let serial = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS);
        let mut grad_serial = Matrix::zeros(DIM, cols);
        let value_serial = serial.value_and_gradient_unbatched(&theta, &mut grad_serial);

        let pooled = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS)
            .with_threads(threads as usize);
        let mut grad_pooled = Matrix::zeros(DIM, cols);
        let value_pooled = pooled.value_and_gradient(&theta, &mut grad_pooled);

        prop_assert!(grad_pooled.sub(&grad_serial).max_abs() <= 1e-12);
        prop_assert!((value_pooled - value_serial).abs() <= 1e-12);
    }

    /// Fused pooled evaluation matches fused serial to ≤ 1e-12 at every
    /// thread count, including threads > samples (one sample per shard).
    #[test]
    fn fused_pooled_matches_fused_serial_at_any_thread_count(
        raw in proptest::collection::vec((0i64..DIM as i64, 0.1f64..2.0, 0i64..16, 0i64..16), 1..40),
        threads in 2i64..10,
    ) {
        let samples = build_samples(&raw);
        let cols = NUM_CUS + NUM_DURATIONS;
        let theta = Matrix::from_fn(DIM, cols, |r, c| 0.04 * (r as f64) - 0.03 * (c as f64));

        let serial = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS);
        let mut grad_serial = Matrix::zeros(DIM, cols);
        let value_serial = serial.value_and_gradient(&theta, &mut grad_serial);

        let pooled = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS)
            .with_threads(threads as usize);
        let mut grad_pooled = Matrix::zeros(DIM, cols);
        let value_pooled = pooled.value_and_gradient(&theta, &mut grad_pooled);

        let max_diff = grad_pooled.sub(&grad_serial).max_abs();
        prop_assert!(
            max_diff <= 1e-12,
            "threads={} samples={} max fused gradient diff={:e}",
            threads, samples.len(), max_diff
        );
        let value_diff = (value_pooled - value_serial).abs();
        prop_assert!(value_diff <= 1e-12, "fused value diff={:e}", value_diff);
    }

    /// The shard layout itself is deterministic and total.
    #[test]
    fn chunk_ranges_partition_for_all_inputs(len in 0i64..500, chunks in 1i64..16) {
        let ranges = chunk_ranges(len as usize, chunks as usize);
        let covered: usize = ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(covered, len as usize);
        prop_assert!(ranges.len() <= (chunks as usize).max(1));
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
    }
}

#[test]
fn degenerate_cohort_smaller_than_thread_count_trains_correctly() {
    // 4 hand-built samples, 16 requested threads: the sharder caps at one
    // sample per shard and training still reproduces the serial model.
    let samples: Vec<Sample> = (0..4)
        .map(|i| Sample {
            patient_id: i,
            features: SparseVec::binary(3, vec![(i % 3) as u32]),
            cu_label: i % 2,
            duration_label: (i + 1) % 2,
        })
        .collect();
    let cols = 4;
    let theta = Matrix::from_fn(3, cols, |r, c| 0.1 * (r as f64) - 0.1 * (c as f64));
    let serial = DmcpObjective::new(&samples, None, 3, 2, 2);
    let sharded = DmcpObjective::new(&samples, None, 3, 2, 2).with_threads(16);
    let mut a = Matrix::zeros(3, cols);
    let mut b = Matrix::zeros(3, cols);
    serial.gradient(&theta, &mut a);
    sharded.gradient(&theta, &mut b);
    assert!(b.sub(&a).max_abs() <= 1e-12);
    assert!((sharded.value(&theta) - serial.value(&theta)).abs() <= 1e-12);
}

#[test]
fn fused_pooled_degenerate_cohort_smaller_than_pool_matches_serial() {
    // 4 hand-built samples, 16 requested threads: the shards (and the pool)
    // cap at one sample per worker and the fused evaluation still matches the
    // fused serial path.
    let samples: Vec<Sample> = (0..4)
        .map(|i| Sample {
            patient_id: i,
            features: SparseVec::binary(3, vec![(i % 3) as u32]),
            cu_label: i % 2,
            duration_label: (i + 1) % 2,
        })
        .collect();
    let cols = 4;
    let theta = Matrix::from_fn(3, cols, |r, c| 0.1 * (r as f64) - 0.1 * (c as f64));
    let serial = DmcpObjective::new(&samples, None, 3, 2, 2);
    let pooled = DmcpObjective::new(&samples, None, 3, 2, 2).with_threads(16);
    let mut a = Matrix::zeros(3, cols);
    let mut b = Matrix::zeros(3, cols);
    let va = serial.value_and_gradient(&theta, &mut a);
    let vb = pooled.value_and_gradient(&theta, &mut b);
    assert!(b.sub(&a).max_abs() <= 1e-12);
    assert!((va - vb).abs() <= 1e-12);
}

#[test]
fn fused_pooled_is_bitwise_deterministic_at_a_fixed_thread_count() {
    let samples = build_samples(&[
        (0, 0.7, 1, 2),
        (3, 1.1, 2, 0),
        (7, 0.4, 0, 3),
        (9, 1.9, 1, 1),
    ]);
    let cols = NUM_CUS + NUM_DURATIONS;
    let theta = Matrix::from_fn(DIM, cols, |r, c| 0.6 * (r as f64) - 0.2 * (c as f64));
    let run = || {
        let obj = DmcpObjective::new(&samples, None, DIM, NUM_CUS, NUM_DURATIONS).with_threads(3);
        let mut grad = Matrix::zeros(DIM, cols);
        let value = obj.value_and_gradient(&theta, &mut grad);
        (grad, value)
    };
    let (g1, v1) = run();
    let (g2, v2) = run();
    assert_eq!(
        g1, g2,
        "fixed thread count must reproduce the fused gradient bitwise"
    );
    assert_eq!(v1.to_bits(), v2.to_bits());
}

#[test]
fn end_to_end_parallel_training_reproduces_bitwise_and_tracks_serial() {
    let ds = Dataset::from_cohort(&generate_cohort(&CohortConfig::tiny(77)));
    let serial_cfg = TrainConfig::fast();
    let parallel_cfg = TrainConfig::fast().with_threads(4);

    let serial = train(&ds, &serial_cfg);
    let parallel_a = train(&ds, &parallel_cfg);
    let parallel_b = train(&ds, &parallel_cfg);

    // Fixed thread count → bitwise identical.
    assert_eq!(parallel_a.theta, parallel_b.theta);
    // Across thread counts → identical up to accumulated rounding.
    let rel = serial.theta.sub(&parallel_a.theta).frobenius_norm()
        / serial.theta.frobenius_norm().max(1e-12);
    assert!(rel < 1e-9, "relative drift {rel}");
}
