//! Integration tests for the self-healing serve path: supervision and
//! recovery, degraded-mode fallback answers, bounded-queue overload
//! shedding, budgeted retries, and `std::error::Error` composability of the
//! workspace's failure types.

use std::time::{Duration, Instant};

use patient_flow::core::{DmcpModel, FeatureMapKind};
use patient_flow::math::parallel::PoolError;
use patient_flow::math::{Matrix, SparseVec};
use patient_flow::optim::WarmStartError;
use patient_flow::serve::{
    FallbackPredictor, PredictionService, RetryPolicy, ServeConfig, ServeError,
};

/// A deterministic non-trivial model: 6 features, 3 CUs, 2 durations.
fn test_model() -> DmcpModel {
    let theta = Matrix::from_fn(6, 5, |r, c| ((r * 5 + c) as f64 * 0.37).sin());
    DmcpModel {
        selection: theta.clone(),
        theta,
        kind: FeatureMapKind::ModulatedPoisson,
        profile_dim: 3,
        service_dim: 3,
        num_cus: 3,
        num_durations: 2,
    }
}

fn request(i: usize) -> SparseVec {
    SparseVec::from_pairs(
        6,
        vec![
            ((i % 6) as u32, 1.0 + i as f64 * 0.25),
            (((i * 2 + 1) % 6) as u32, 0.5),
        ],
    )
}

/// A fixed-distribution fallback standing in for the Markov marginals, with
/// an optional per-answer delay (to pin the dispatcher for overload tests).
struct StubFallback {
    cu: Vec<f64>,
    dur: Vec<f64>,
    delay: Duration,
}

impl StubFallback {
    fn instant() -> Self {
        StubFallback {
            cu: vec![0.5, 0.3, 0.2],
            dur: vec![0.6, 0.4],
            delay: Duration::ZERO,
        }
    }

    fn slow(delay: Duration) -> Self {
        StubFallback {
            delay,
            ..Self::instant()
        }
    }
}

impl FallbackPredictor for StubFallback {
    fn dims(&self) -> (usize, usize) {
        (self.cu.len(), self.dur.len())
    }

    fn probabilities(&self, _features: &SparseVec) -> (Vec<f64>, Vec<f64>) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        (self.cu.clone(), self.dur.clone())
    }
}

#[test]
fn serve_error_source_chains_to_the_pool_error() {
    let err = ServeError::Pool(PoolError::WorkerLost { missing: 2 });
    let source = std::error::Error::source(&err).expect("ServeError::Pool must expose a source");
    let pool = source
        .downcast_ref::<PoolError>()
        .expect("source must be the PoolError");
    assert_eq!(*pool, PoolError::WorkerLost { missing: 2 });
    // Display stays consistent across the chain: the outer message embeds
    // the inner one, so logging either level tells the same story.
    assert!(err.to_string().contains(&pool.to_string()));
    // Leaf errors have no further source.
    assert!(std::error::Error::source(pool).is_none());
    // Every failure type in the serving/training stack boxes as dyn Error.
    let _: Box<dyn std::error::Error> = Box::new(ServeError::DeadlineExceeded);
    let _: Box<dyn std::error::Error> = Box::new(PoolError::ShutDown);
    let _: Box<dyn std::error::Error> = Box::new(WarmStartError::InvalidRho(-1.0));
    assert!(std::error::Error::source(&ServeError::ShutDown).is_none());
}

#[test]
fn kill_all_heals_back_to_bitwise_correct_answers() {
    let model = test_model();
    let expected = model.probabilities(&request(1));
    let service = PredictionService::start(
        model,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            threads: 2,
            ..Default::default()
        },
    );
    let client = service.client();
    assert!(client.predict(request(1)).is_ok());
    service.inject_worker_failure();
    service.inject_worker_failure();
    let mut healed = None;
    for _ in 0..200 {
        match client.predict(request(1)) {
            Ok(p) => {
                healed = Some(p);
                break;
            }
            Err(ServeError::Pool(_)) => {}
            Err(other) => panic!("unexpected error while healing: {other:?}"),
        }
    }
    let p = healed.expect("service never healed after kill-all");
    assert_eq!(p.cu_probs, expected.0);
    assert_eq!(p.duration_probs, expected.1);
    assert!(!p.degraded);
    // The first Ok can arrive while the second injected kill is still in
    // flight (a surviving/respawned worker covers the whole batch), so keep
    // driving batches until the supervisor has respawned everything.
    let mut health = service.health();
    for _ in 0..500 {
        if health.is_full() && health.respawned_total >= 2 {
            break;
        }
        let _ = client.predict(request(1));
        health = service.health();
    }
    assert!(health.is_full());
    assert!(health.respawned_total >= 2);
    service.shutdown();
}

#[test]
fn unhealthy_pool_answers_degraded_from_the_fallback() {
    // min_live_fraction > 1 forces degraded mode even on a healthy pool —
    // the deterministic way to pin the degradation path open.
    let service = PredictionService::start_with_fallback(
        test_model(),
        ServeConfig {
            threads: 2,
            min_live_fraction: 2.0,
            ..Default::default()
        },
        Some(Box::new(StubFallback::instant())),
    );
    let client = service.client();
    let p = client
        .predict(request(0))
        .expect("degraded mode still answers");
    assert!(p.degraded, "fallback answers must carry the degraded tag");
    assert_eq!(p.cu_probs, vec![0.5, 0.3, 0.2]);
    assert_eq!(p.duration_probs, vec![0.6, 0.4]);
    service.shutdown();
}

#[test]
fn fallback_catches_scoring_failures_without_client_errors() {
    // Healthy threshold (0.0 never degrades pre-emptively), but a kill-all
    // makes the batch's scoring pass fail — the fallback answers it instead
    // of surfacing ServeError::Pool.
    let service = PredictionService::start_with_fallback(
        test_model(),
        ServeConfig {
            threads: 2,
            min_live_fraction: 0.0,
            ..Default::default()
        },
        Some(Box::new(StubFallback::instant())),
    );
    let client = service.client();
    assert!(!client.predict(request(0)).unwrap().degraded);
    service.inject_worker_failure();
    service.inject_worker_failure();
    // With a fallback configured, no request errors: each is either the
    // model's answer or a tagged degraded one.
    let mut saw_degraded = false;
    let mut healed = false;
    for _ in 0..200 {
        let p = client
            .predict(request(0))
            .expect("fallback must prevent client-visible pool errors");
        if p.degraded {
            saw_degraded = true;
        } else if saw_degraded {
            healed = true;
            break;
        }
    }
    assert!(saw_degraded, "kill-all must have produced degraded answers");
    assert!(healed, "supervisor must heal back to non-degraded answers");
    service.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_instead_of_queueing() {
    // A slow fallback pinned into degraded mode makes the dispatcher drain
    // far slower than a tight submission burst, so the 4-slot queue must
    // overflow deterministically.
    let service = PredictionService::start_with_fallback(
        test_model(),
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_micros(50),
            threads: 2,
            queue_capacity: 4,
            min_live_fraction: 2.0,
            ..Default::default()
        },
        Some(Box::new(StubFallback::slow(Duration::from_millis(20)))),
    );
    let client = service.client();
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..64 {
        match client.submit(request(i)) {
            Ok(pending) => accepted.push(pending),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 4);
                shed += 1;
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert!(shed > 0, "a 64-burst against a 4-slot queue must shed");
    // Accepted requests are all answered (degraded), none lost.
    for pending in accepted {
        assert!(pending.wait().expect("accepted request lost").degraded);
    }
    service.shutdown();
}

#[test]
fn retry_rides_out_a_kill_all() {
    let model = test_model();
    let expected = model.probabilities(&request(2));
    let service = PredictionService::start(
        model,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            threads: 2,
            ..Default::default()
        },
    );
    let client = service.client();
    assert!(client.predict(request(2)).is_ok());
    service.inject_worker_failure();
    service.inject_worker_failure();
    let policy = RetryPolicy {
        max_attempts: 100,
        initial_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
    };
    let p = client
        .predict_with_retry(&request(2), &policy)
        .expect("budgeted retry must outlast the heal window");
    assert_eq!(p.cu_probs, expected.0);
    assert_eq!(p.duration_probs, expected.1);
    service.shutdown();
}

#[test]
fn malformed_requests_are_never_retried() {
    let service = PredictionService::start(test_model(), ServeConfig::default());
    let client = service.client();
    // A backoff long enough that even one retry would be visible in elapsed
    // time: FeatureDim must return immediately instead.
    let policy = RetryPolicy {
        max_attempts: 5,
        initial_backoff: Duration::from_secs(5),
        max_backoff: Duration::from_secs(5),
    };
    let started = Instant::now();
    let err = client
        .predict_with_retry(&SparseVec::binary(3, vec![0]), &policy)
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::FeatureDim {
            expected: 6,
            got: 3
        }
    );
    assert!(!err.is_retryable());
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "non-retryable errors must fail without sleeping the backoff"
    );
    service.shutdown();
}

#[test]
fn retryable_classification_matches_the_failure_semantics_table() {
    // The README's failure-modes table promises exactly this split.
    assert!(ServeError::Pool(PoolError::ShutDown).is_retryable());
    assert!(ServeError::Overloaded { capacity: 1 }.is_retryable());
    assert!(ServeError::DeadlineExceeded.is_retryable());
    assert!(!ServeError::FeatureDim {
        expected: 1,
        got: 2
    }
    .is_retryable());
    assert!(!ServeError::ShutDown.is_retryable());
}
