//! Property tests of the serving-path exactness contract: scoring a
//! micro-batch of `k` requests as one register-blocked `CSR × Θ` pass must be
//! **bitwise identical** to `k` independent single-request scorings, for
//! every batch size the micro-batcher produces (`k ∈ {1, 2, 7, 64}`) and for
//! every monomorphised column fast path of the CSR kernel (`C + D ∈
//! {4, 8, 16}`) plus the generic fallback.
//!
//! Micro-batching is a throughput optimisation; it must never perturb a
//! prediction by even one ULP.  The contract holds because the batched kernel
//! visits each row's nonzeros in the same order as the per-`SparseVec` walk —
//! the CSR packing only changes memory layout, never operation order.

use proptest::prelude::*;

use patient_flow::core::{DmcpModel, FeatureMapKind};
use patient_flow::math::{CsrMatrix, Matrix, SparseVec};
use patient_flow::serve::{PredictionService, ServeConfig};

const DIM: usize = 10;

/// The batch sizes the dispatcher actually produces: a timer flush of one,
/// small partial batches, and a full `max_batch` flush.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

/// `(C, D)` pairs hitting each monomorphised column width (4, 8, 16) of
/// `CsrMatrix::accumulate_scores_range`, plus the generic-column fallback.
const HEAD_SPLITS: [(usize, usize); 4] = [(2, 2), (4, 4), (8, 8), (3, 2)];

fn model_for(num_cus: usize, num_durations: usize, theta_seed: f64) -> DmcpModel {
    let cols = num_cus + num_durations;
    let theta = Matrix::from_fn(DIM, cols, |r, c| {
        ((r * cols + c) as f64 * theta_seed).sin() * 0.8
    });
    DmcpModel {
        selection: theta.clone(),
        theta,
        kind: FeatureMapKind::ModulatedPoisson,
        profile_dim: DIM / 2,
        service_dim: DIM - DIM / 2,
        num_cus,
        num_durations,
    }
}

/// One request per raw tuple; two active dimensions each so batched rows
/// overlap on Θ rows.
fn build_requests(raw: &[(i64, f64)]) -> Vec<SparseVec> {
    raw.iter()
        .map(|&(idx, value)| {
            let first = (idx as usize) % DIM;
            let second = (first + 3) % DIM;
            SparseVec::from_pairs(DIM, vec![(first as u32, value), (second as u32, 1.0)])
        })
        .collect()
}

proptest! {
    /// Batched block scoring is bitwise identical to k independent
    /// single-request scorings, across every column fast path.
    #[test]
    fn batched_scoring_is_bitwise_identical_to_single_request_scoring(
        raw in proptest::collection::vec((0i64..DIM as i64, -2.0f64..2.0), 64),
        theta_seed in 0.05f64..1.5,
    ) {
        let pool = build_requests(&raw);
        for &(num_cus, num_durations) in &HEAD_SPLITS {
            let model = model_for(num_cus, num_durations, theta_seed);
            for &k in &BATCH_SIZES {
                let rows: Vec<&SparseVec> = (0..k).map(|i| &pool[i % pool.len()]).collect();
                let block = CsrMatrix::from_rows(DIM, rows.iter().copied());
                let batched = model.probabilities_block(&block);
                prop_assert_eq!(batched.len(), k);
                for (i, (row, (batch_cu, batch_dur))) in
                    rows.iter().zip(batched.iter()).enumerate()
                {
                    let (single_cu, single_dur) = model.probabilities(row);
                    for (a, b) in single_cu.iter().zip(batch_cu.iter()) {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "cu probs diverged: k={} row={} cols={}",
                            k, i, num_cus + num_durations
                        );
                    }
                    for (a, b) in single_dur.iter().zip(batch_dur.iter()) {
                        prop_assert!(
                            a.to_bits() == b.to_bits(),
                            "duration probs diverged: k={} row={} cols={}",
                            k, i, num_cus + num_durations
                        );
                    }
                }
            }
        }
    }

    /// The same contract through the live service: requests batched by the
    /// dispatcher (multi-threaded scoring pool included) answer bitwise
    /// identically to direct model calls.
    #[test]
    fn live_service_answers_are_bitwise_identical_to_direct_model_calls(
        raw in proptest::collection::vec((0i64..DIM as i64, -2.0f64..2.0), 1..32),
        theta_seed in 0.05f64..1.5,
    ) {
        let requests = build_requests(&raw);
        let model = model_for(4, 4, theta_seed);
        let expected: Vec<_> = requests.iter().map(|f| model.probabilities(f)).collect();
        let service = PredictionService::start(
            model,
            ServeConfig {
                max_batch: 8,
                max_wait: std::time::Duration::from_micros(100),
                threads: 2,
                ..Default::default()
            },
        );
        let client = service.client();
        for (features, (cu, dur)) in requests.iter().zip(expected.iter()) {
            let prediction = client.predict(features.clone()).unwrap();
            prop_assert_eq!(&prediction.cu_probs, cu);
            prop_assert_eq!(&prediction.duration_probs, dur);
        }
        service.shutdown();
    }
}
