//! Counting regression tests for the time-to-tolerance ADMM solver: the
//! adaptive configuration must do strictly less evaluation work than the
//! fixed-budget schedule it replaced while reaching at least the same final
//! objective, and the early-stop paths must never skip the per-outer trace
//! bookkeeping.

use patient_flow::core::loss::DmcpObjective;
use patient_flow::core::stream::{train_streamed, ShardedDmcpObjective, ShardedSamples};
use patient_flow::core::{train, Dataset, SolverMode, TrainConfig};
use patient_flow::ehr::{generate_cohort, CohortConfig};
use patient_flow::math::Matrix;
use patient_flow::optim::admm::solve_group_lasso;
use patient_flow::optim::SmoothObjective;
use pfp_bench::CountingObjective;

fn fixture() -> (Dataset, Vec<patient_flow::core::Sample>) {
    let cohort = generate_cohort(&CohortConfig::tiny(42));
    let dataset = Dataset::from_cohort(&cohort);
    let kind = dataset.default_mcp_kind();
    let samples = dataset.featurize(kind);
    (dataset, samples)
}

#[test]
fn adaptive_solve_uses_strictly_fewer_fused_evaluations_while_matching_objective() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;
    let theta0 = Matrix::zeros(rows, cols);

    let run = |config: TrainConfig| {
        let counting = CountingObjective::new(DmcpObjective::new(
            &samples,
            None,
            rows,
            dataset.num_cus,
            dataset.num_durations,
        ));
        let result = solve_group_lasso(&counting, theta0.clone(), &config.admm_config());
        let passes = counting.passes();
        assert_eq!(
            passes, result.evaluations,
            "driver accounting must match observed calls"
        );
        (result, passes)
    };

    let (fixed, fixed_passes) = run(TrainConfig::fast().with_solver(SolverMode::FixedBudget));
    let (adaptive, adaptive_passes) = run(TrainConfig::fast());

    assert!(
        adaptive_passes < fixed_passes,
        "adaptive passes {adaptive_passes} must be strictly fewer than fixed {fixed_passes}"
    );
    // The adaptive solve must *reach* the fixed-budget objective — within
    // 1e-6 above it; landing below it (a better optimum) is the whole point.
    let fixed_final = *fixed.objective_trace.last().unwrap();
    let adaptive_final = *adaptive.objective_trace.last().unwrap();
    assert!(
        adaptive_final <= fixed_final + 1e-6,
        "adaptive final {adaptive_final} must match fixed final {fixed_final} within 1e-6"
    );
}

#[test]
fn early_stop_paths_never_skip_the_trailing_trace_evaluation() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;

    // A well-regularised problem (γ big enough that the optimum is near) with
    // loose residual tolerances: the solver must stop well before the cap.
    // (At the paper's tiny γ the cross-entropy optimum drifts far out and the
    // dual residual decays slowly, so the cap is what usually fires there.)
    let mut config = TrainConfig::fast().with_gamma(0.05);
    config.tolerance = 0.5;
    config.max_outer_iters = 100;
    let objective =
        DmcpObjective::new(&samples, None, rows, dataset.num_cus, dataset.num_durations);
    let result = solve_group_lasso(&objective, Matrix::zeros(rows, cols), &config.admm_config());

    assert!(
        result.converged,
        "fixture must exercise the early-stop path"
    );
    assert!(
        result.outer_iterations < 100,
        "stopped at {} outers",
        result.outer_iterations
    );
    assert_eq!(
        result.objective_trace.len(),
        result.outer_iterations + 1,
        "every outer iteration (early-stopped ones included) must extend the trace"
    );
    // The carried trace entry is exactly what a fresh evaluation at the final
    // iterate yields: the smooth value rides along with the last fused
    // evaluation instead of being skipped on early exits.
    let fresh = objective.value(&result.theta) + config.gamma * result.x.l12_norm();
    let last = *result.objective_trace.last().unwrap();
    assert!(
        (last - fresh).abs() <= 1e-12,
        "carried trace value {last} must match fresh evaluation {fresh}"
    );
}

#[test]
fn fixed_budget_mode_reproduces_the_legacy_call_pattern() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;

    let mut config = TrainConfig::fast().with_solver(SolverMode::FixedBudget);
    config.tolerance = 0.0; // exact counts: no early stopping anywhere
    let counting = CountingObjective::new(DmcpObjective::new(
        &samples,
        None,
        rows,
        dataset.num_cus,
        dataset.num_durations,
    ));
    let result = solve_group_lasso(&counting, Matrix::zeros(rows, cols), &config.admm_config());

    let outers = config.max_outer_iters;
    let inners = config.max_inner_iters;
    assert_eq!(result.outer_iterations, outers);
    assert_eq!(counting.fused_calls(), outers + 1);
    assert_eq!(counting.gradient_calls(), outers * (inners - 1));
    assert_eq!(counting.value_calls(), 0);
}

/// Solving over shard blocks must retrace the materialized solve exactly —
/// same per-outer objective trace (to the bit), same iterate, same selection
/// matrix, same iteration counts — for every shard size, on both the default
/// adaptive configuration and the loosely-toleranced early-stop fixture
/// (adaptive ρ and the residual-based stop must see identical numbers, so
/// they must make identical decisions).
#[test]
fn sharded_solve_retraces_the_materialized_solve_bitwise() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;
    let theta0 = Matrix::zeros(rows, cols);

    let mut early_stop = TrainConfig::fast().with_gamma(0.05);
    early_stop.tolerance = 0.5;
    early_stop.max_outer_iters = 100;
    let configs = [TrainConfig::fast(), early_stop];

    for config in &configs {
        let reference =
            DmcpObjective::new(&samples, None, rows, dataset.num_cus, dataset.num_durations);
        let expected = solve_group_lasso(&reference, theta0.clone(), &config.admm_config());

        for shard_size in [1usize, 7, samples.len(), samples.len() + 1] {
            let sharded = ShardedSamples::from_samples(
                &samples,
                shard_size,
                rows,
                dataset.num_cus,
                dataset.num_durations,
            );
            let objective = ShardedDmcpObjective::new(&sharded, None);
            let result = solve_group_lasso(&objective, theta0.clone(), &config.admm_config());

            assert_eq!(result.outer_iterations, expected.outer_iterations);
            assert_eq!(result.converged, expected.converged);
            assert_eq!(result.inner_iterations, expected.inner_iterations);
            assert_eq!(result.objective_trace.len(), expected.objective_trace.len());
            for (a, b) in result.objective_trace.iter().zip(&expected.objective_trace) {
                assert_eq!(a.to_bits(), b.to_bits(), "shard={shard_size}");
            }
            assert_eq!(result.theta, expected.theta, "shard={shard_size}");
            assert_eq!(result.x, expected.x, "shard={shard_size}");
            assert_eq!(result.final_rho.to_bits(), expected.final_rho.to_bits());
        }
    }
}

/// End-to-end out-of-core training — the cohort regenerated from its seed on
/// every evaluation, never materialized — must produce the *same model* as
/// the classic generate → featurize → train pipeline, bit for bit.
#[test]
fn out_of_core_training_reproduces_materialized_training_bitwise() {
    let cohort_config = CohortConfig::tiny(42);
    let train_config = TrainConfig::fast();

    let dataset = Dataset::from_cohort(&generate_cohort(&cohort_config));
    let materialized = train(&dataset, &train_config);

    for shard_size in [13usize, cohort_config.num_patients + 1] {
        let streamed = train_streamed(&cohort_config, &train_config, shard_size);
        assert_eq!(streamed.kind, materialized.kind, "shard={shard_size}");
        assert_eq!(streamed.theta, materialized.theta, "shard={shard_size}");
        assert_eq!(streamed.selection, materialized.selection);
        assert_eq!(streamed.profile_dim, materialized.profile_dim);
        assert_eq!(streamed.service_dim, materialized.service_dim);
    }
}
