//! Counting regression tests for the time-to-tolerance ADMM solver: the
//! adaptive configuration must do strictly less evaluation work than the
//! fixed-budget schedule it replaced while reaching at least the same final
//! objective, and the early-stop paths must never skip the per-outer trace
//! bookkeeping.

use patient_flow::core::loss::DmcpObjective;
use patient_flow::core::{Dataset, SolverMode, TrainConfig};
use patient_flow::ehr::{generate_cohort, CohortConfig};
use patient_flow::math::Matrix;
use patient_flow::optim::admm::solve_group_lasso;
use patient_flow::optim::SmoothObjective;
use pfp_bench::CountingObjective;

fn fixture() -> (Dataset, Vec<patient_flow::core::Sample>) {
    let cohort = generate_cohort(&CohortConfig::tiny(42));
    let dataset = Dataset::from_cohort(&cohort);
    let kind = dataset.default_mcp_kind();
    let samples = dataset.featurize(kind);
    (dataset, samples)
}

#[test]
fn adaptive_solve_uses_strictly_fewer_fused_evaluations_while_matching_objective() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;
    let theta0 = Matrix::zeros(rows, cols);

    let run = |config: TrainConfig| {
        let counting = CountingObjective::new(DmcpObjective::new(
            &samples,
            None,
            rows,
            dataset.num_cus,
            dataset.num_durations,
        ));
        let result = solve_group_lasso(&counting, theta0.clone(), &config.admm_config());
        let passes = counting.passes();
        assert_eq!(
            passes, result.evaluations,
            "driver accounting must match observed calls"
        );
        (result, passes)
    };

    let (fixed, fixed_passes) = run(TrainConfig::fast().with_solver(SolverMode::FixedBudget));
    let (adaptive, adaptive_passes) = run(TrainConfig::fast());

    assert!(
        adaptive_passes < fixed_passes,
        "adaptive passes {adaptive_passes} must be strictly fewer than fixed {fixed_passes}"
    );
    // The adaptive solve must *reach* the fixed-budget objective — within
    // 1e-6 above it; landing below it (a better optimum) is the whole point.
    let fixed_final = *fixed.objective_trace.last().unwrap();
    let adaptive_final = *adaptive.objective_trace.last().unwrap();
    assert!(
        adaptive_final <= fixed_final + 1e-6,
        "adaptive final {adaptive_final} must match fixed final {fixed_final} within 1e-6"
    );
}

#[test]
fn early_stop_paths_never_skip_the_trailing_trace_evaluation() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;

    // A well-regularised problem (γ big enough that the optimum is near) with
    // loose residual tolerances: the solver must stop well before the cap.
    // (At the paper's tiny γ the cross-entropy optimum drifts far out and the
    // dual residual decays slowly, so the cap is what usually fires there.)
    let mut config = TrainConfig::fast().with_gamma(0.05);
    config.tolerance = 0.5;
    config.max_outer_iters = 100;
    let objective =
        DmcpObjective::new(&samples, None, rows, dataset.num_cus, dataset.num_durations);
    let result = solve_group_lasso(&objective, Matrix::zeros(rows, cols), &config.admm_config());

    assert!(
        result.converged,
        "fixture must exercise the early-stop path"
    );
    assert!(
        result.outer_iterations < 100,
        "stopped at {} outers",
        result.outer_iterations
    );
    assert_eq!(
        result.objective_trace.len(),
        result.outer_iterations + 1,
        "every outer iteration (early-stopped ones included) must extend the trace"
    );
    // The carried trace entry is exactly what a fresh evaluation at the final
    // iterate yields: the smooth value rides along with the last fused
    // evaluation instead of being skipped on early exits.
    let fresh = objective.value(&result.theta) + config.gamma * result.x.l12_norm();
    let last = *result.objective_trace.last().unwrap();
    assert!(
        (last - fresh).abs() <= 1e-12,
        "carried trace value {last} must match fresh evaluation {fresh}"
    );
}

#[test]
fn fixed_budget_mode_reproduces_the_legacy_call_pattern() {
    let (dataset, samples) = fixture();
    let rows = dataset.total_feature_dim();
    let cols = dataset.num_cus + dataset.num_durations;

    let mut config = TrainConfig::fast().with_solver(SolverMode::FixedBudget);
    config.tolerance = 0.0; // exact counts: no early stopping anywhere
    let counting = CountingObjective::new(DmcpObjective::new(
        &samples,
        None,
        rows,
        dataset.num_cus,
        dataset.num_durations,
    ));
    let result = solve_group_lasso(&counting, Matrix::zeros(rows, cols), &config.admm_config());

    let outers = config.max_outer_iters;
    let inners = config.max_inner_iters;
    assert_eq!(result.outer_iterations, outers);
    assert_eq!(counting.fused_calls(), outers + 1);
    assert_eq!(counting.gradient_calls(), outers * (inners - 1));
    assert_eq!(counting.value_calls(), 0);
}
